//! Pipelining and adversarial-client behavior of the TCP front ends.
//!
//! A protocol client may write any number of request lines before
//! reading a single response; both front ends must answer **in request
//! order**, echoing client-supplied `id`s, regardless of how the bytes
//! were chunked on the way in. Covers: deep pipelining with `id`
//! correlation, heavy ops (worker-pool batches) interleaved with light
//! ones on one connection, slow-loris byte-at-a-time requests, a
//! mid-request disconnect, oversized-line rejection, and a proptest
//! that re-chunking one request stream at arbitrary byte boundaries
//! never changes a single response byte — with the epoll and threaded
//! front ends agreeing exactly.

use cerfix::MasterData;
use cerfix_relation::{RelationBuilder, Schema, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use cerfix_server::{CleaningService, Client, Frontend, Server, ServerHandle, ServiceConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const FRONTENDS: [Frontend; 2] = [Frontend::Epoll, Frontend::Threads];

/// key → val lookup service over `n` master rows (cheap per-op work, so
/// transport behavior dominates).
fn kv_service(n: usize, workers: usize) -> CleaningService {
    let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
    let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
    let mut builder = RelationBuilder::new(ms.clone());
    for i in 0..n {
        builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
    }
    let master = MasterData::new(builder.build().unwrap());
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "kv",
                &input,
                &ms,
                vec![(0, 0)],
                vec![(1, 1)],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    CleaningService::new(
        Arc::new(master),
        Arc::new(rules),
        ServiceConfig {
            workers,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    )
}

fn spawn(frontend: Frontend) -> (ServerHandle, CleaningService) {
    let service = kv_service(20, 2);
    let handle =
        Server::spawn_with("127.0.0.1:0", service.clone(), frontend).expect("bind ephemeral");
    (handle, service)
}

/// N requests written before any read: responses arrive in order, each
/// echoing its request id as the first field.
#[test]
fn pipelined_requests_answer_in_order_with_ids() {
    for frontend in FRONTENDS {
        let (handle, _service) = spawn(frontend);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let view = client
            .create_session(vec![Value::str("k3"), Value::str("WRONG"), Value::str("n")])
            .expect("create");

        let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
        stream.set_nodelay(true).unwrap();
        const N: usize = 200;
        let mut burst = String::new();
        for i in 0..N {
            burst.push_str(&format!(
                "{{\"op\":\"session.get\",\"session\":{},\"id\":{i}}}\n",
                view.session
            ));
        }
        stream.write_all(burst.as_bytes()).expect("write burst");
        let mut reader = BufReader::new(stream);
        for i in 0..N {
            let mut line = String::new();
            reader.read_line(&mut line).expect("response line");
            assert!(
                line.starts_with(&format!("{{\"id\":{i},\"ok\":true,")),
                "{frontend:?} response {i} out of order or unechoed: {line}"
            );
        }
        handle.shutdown().expect("shutdown");
    }
}

/// A failing request mid-batch must not desynchronize the client: the
/// pipeline call drains every response, and the connection keeps
/// pairing requests with the right responses afterwards.
#[test]
fn pipeline_error_mid_batch_does_not_desync_client() {
    use cerfix_server::protocol::Request;
    for frontend in FRONTENDS {
        let (handle, _service) = spawn(frontend);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let view = client
            .create_session(vec![Value::str("k3"), Value::str("WRONG"), Value::str("n")])
            .expect("create");
        let batch = [
            Request::SessionGet {
                session: view.session,
            },
            Request::SessionGet { session: 999 }, // unknown → ok:false
            Request::Hello,
        ];
        assert!(client.pipeline(&batch).is_err(), "mid-batch error surfaces");
        // The next round trip pairs correctly (no stale buffered line).
        let hello = client.hello().expect("client still synchronized");
        assert_eq!(
            hello
                .get("service")
                .and_then(cerfix_server::wire::Json::as_str),
            Some("cerfix-server")
        );
        let again = client
            .get_session(view.session)
            .expect("session still live");
        assert_eq!(again.session, view.session);
        handle.shutdown().expect("shutdown");
    }
}

/// Heavy ops (worker-pool batches) interleaved with light ops on one
/// pipelined connection still answer strictly in request order.
#[test]
fn heavy_and_light_ops_interleave_in_order() {
    for frontend in FRONTENDS {
        let (handle, _service) = spawn(frontend);
        let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
        // Note: the two-tuple `clean` reserves session ids 1–2 for audit
        // attribution, so the interactive session created next gets 3.
        let burst = concat!(
            "{\"op\":\"hello\",\"id\":0}\n",
            "{\"op\":\"clean\",\"tuples\":[[\"k1\",\"x\",\"n\"],[\"k2\",\"y\",\"n\"]],\"trust\":[\"key\",\"note\"],\"id\":1}\n",
            "{\"op\":\"session.create\",\"tuple\":[\"k3\",\"WRONG\",\"n\"],\"id\":2}\n",
            "{\"op\":\"check\",\"id\":3}\n",
            "{\"op\":\"session.validate\",\"session\":3,\"validations\":{\"key\":\"k3\"},\"id\":4}\n",
            "{\"op\":\"clean\",\"tuples\":[[\"k4\",\"z\",\"n\"]],\"trust\":[\"key\",\"note\"],\"id\":5}\n",
            "{\"op\":\"session.get\",\"session\":3,\"id\":6}\n",
        );
        stream.write_all(burst.as_bytes()).expect("write burst");
        let mut reader = BufReader::new(stream);
        for i in 0..7 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("response line");
            assert!(
                line.starts_with(&format!("{{\"id\":{i},\"ok\":true,")),
                "{frontend:?} response {i}: {line}"
            );
            if i == 4 {
                assert!(line.contains("\"v3\""), "rule fix flowed through: {line}");
            }
        }
        handle.shutdown().expect("shutdown");
    }
}

/// Slow-loris: a request trickling in a few bytes per write across many
/// poll iterations is answered normally once its newline arrives.
#[test]
fn slow_loris_partial_lines_assemble() {
    for frontend in FRONTENDS {
        let (handle, _service) = spawn(frontend);
        let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
        stream.set_nodelay(true).unwrap();
        let request = b"{\"op\":\"session.create\",\"tuple\":[\"k5\",\"WRONG\",\"n\"],\"id\":77}\n";
        for (i, chunk) in request.chunks(3).enumerate() {
            stream.write_all(chunk).expect("trickle");
            if i % 4 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        assert!(
            line.starts_with("{\"id\":77,\"ok\":true,"),
            "{frontend:?}: {line}"
        );
        handle.shutdown().expect("shutdown");
    }
}

/// A client that dies mid-request must not wedge the server or leak the
/// connection gauge; later clients are unaffected.
#[test]
fn mid_request_disconnect_leaves_server_healthy() {
    for frontend in FRONTENDS {
        let (handle, service) = spawn(frontend);
        {
            let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
            stream
                .write_all(b"{\"op\":\"session.create\",\"tu")
                .expect("partial write");
            // Dropped here: connection dies with half a request buffered.
        }
        // The server notices, reaps the connection, and keeps serving.
        let mut client = Client::connect(handle.addr()).expect("connect after disconnect");
        let view = client
            .create_session(vec![Value::str("k1"), Value::str("WRONG"), Value::str("n")])
            .expect("service healthy");
        assert_eq!(view.session, 1, "no half-request ever executed");
        drop(client);
        // Gauge settles back to zero once both sockets are reaped.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            if service.metrics().connections_open == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{frontend:?}: connections_open stuck at {}",
                service.metrics().connections_open
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(service.metrics().connections_total >= 2);
        handle.shutdown().expect("shutdown");
    }
}

/// A newline-less stream is rejected once the partial line passes the
/// 8 MiB bound — with an error reply before the close.
#[test]
fn oversized_partial_line_is_rejected() {
    for frontend in FRONTENDS {
        let (handle, _service) = spawn(frontend);
        let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
        let chunk = vec![b'x'; 1024 * 1024];
        // Write until the server hangs up (it must, after ~8 MiB).
        let mut wrote = 0usize;
        for _ in 0..32 {
            match stream.write_all(&chunk) {
                Ok(()) => wrote += chunk.len(),
                Err(_) => break,
            }
        }
        assert!(wrote >= 8 * 1024 * 1024 || wrote < 32 * chunk.len());
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        let _ = reader.read_line(&mut response);
        assert!(
            response.contains("exceeds 8 MiB"),
            "{frontend:?}: expected oversize reply, got {response:?}"
        );
        handle.shutdown().expect("shutdown");
    }
}

// ---------------------------------------------------------------------
// Chunking proptest: byte boundaries never change responses, and the
// two front ends agree byte-for-byte.
// ---------------------------------------------------------------------

/// One deterministic request script (some valid, some malformed, some
/// heavy), rendered to a byte stream.
fn script_lines(selector: u64) -> Vec<String> {
    let ops: Vec<String> = vec![
        "{\"op\":\"hello\",\"id\":0}".into(),
        "{\"op\":\"session.create\",\"tuple\":[\"k1\",\"WRONG\",\"n\"],\"id\":1}".into(),
        "{\"op\":\"session.validate\",\"session\":1,\"validations\":{\"key\":\"k1\"},\"id\":2}"
            .into(),
        "{\"op\":\"session.get\",\"session\":1,\"id\":3}".into(),
        "{\"op\":\"session.fix\",\"session\":1}".into(),
        "{\"op\":\"clean\",\"tuples\":[[\"k2\",\"x\",\"n\"]],\"trust\":[\"key\",\"note\"],\"id\":4}"
            .into(),
        "{\"op\":\"check\",\"id\":5}".into(),
        "{\"op\":\"session.commit\",\"session\":1,\"id\":6}".into(),
        "{\"op\":\"session.get\",\"session\":99,\"id\":7}".into(),
        "{\"op\":\"audit.read\",\"start\":0,\"id\":8}".into(),
        "not json at all".into(),
        "{\"op\":\"warp\",\"id\":9}".into(),
        "{\"op\":\"session.abort\",\"session\":42}".into(),
        "   ".into(), // blank line: no response
        "{\"op\":\"session.create\",\"tuple\":[\"k9\",\"q\",\"r\"],\"id\":10}".into(),
    ];
    // Deterministic subsequence + order shuffle driven by `selector`
    // (same value ⇒ same script on both front ends).
    let mut lines = Vec::new();
    let mut state = selector | 1;
    for round in 0..2 {
        for (i, op) in ops.iter().enumerate() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(round + i as u64);
            if state & 0b11 != 0 {
                lines.push(op.clone());
            }
        }
    }
    lines
}

/// Expected response count: one per non-blank line.
fn expected_responses(lines: &[String]) -> usize {
    lines.iter().filter(|l| !l.trim().is_empty()).count()
}

/// Drive `stream_bytes` through a fresh server on `frontend`, chunked
/// at the given boundaries, and return all response lines.
fn run_chunked(frontend: Frontend, stream_bytes: &[u8], chunks: &[usize], n: usize) -> Vec<String> {
    let (handle, _service) = spawn(frontend);
    let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
    stream.set_nodelay(true).unwrap();
    let mut pos = 0usize;
    let mut chunk_iter = chunks.iter().cycle();
    while pos < stream_bytes.len() {
        let len = (*chunk_iter.next().unwrap()).clamp(1, stream_bytes.len() - pos);
        stream
            .write_all(&stream_bytes[pos..pos + len])
            .expect("chunk");
        pos += len;
        if pos % 979 < 40 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(n);
    for _ in 0..n {
        let mut line = String::new();
        let read = reader.read_line(&mut line).expect("response line");
        assert!(read > 0, "{frontend:?}: stream ended early");
        responses.push(line);
    }
    // Nothing extra follows.
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
    assert!(rest.is_empty(), "{frontend:?}: trailing bytes {rest:?}");
    handle.shutdown().expect("shutdown");
    responses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunking a pipelined request stream at arbitrary byte boundaries
    /// never changes a response byte, and the epoll and threaded front
    /// ends produce identical response streams.
    #[test]
    fn chunking_never_changes_responses(
        selector in 0u64..u64::MAX,
        chunk_a in 1usize..64,
        chunk_b in 1usize..512,
        chunk_c in 1usize..7,
    ) {
        let lines = script_lines(selector);
        let n = expected_responses(&lines);
        let mut bytes = Vec::new();
        for line in &lines {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        }
        let chunks = [chunk_a, chunk_b, chunk_c];
        let epoll = run_chunked(Frontend::Epoll, &bytes, &chunks, n);
        // The threaded arm gets different boundaries on purpose.
        let threaded = run_chunked(Frontend::Threads, &bytes, &[chunk_c, chunk_a], n);
        prop_assert_eq!(&epoll, &threaded, "front ends disagree");
        // And a single-write run agrees too (chunking irrelevant).
        let whole = run_chunked(Frontend::Epoll, &bytes, &[bytes.len()], n);
        prop_assert_eq!(&epoll, &whole, "chunk boundaries changed responses");
    }
}
